// Wire-protocol robustness: every op round-trips losslessly (including
// Status codes and messages — the router's merge logic depends on
// Unavailable and DataLoss surviving the seam byte-for-byte), and every
// malformed input — truncation, oversized length prefixes, unknown tags,
// bad versions, trailing bytes, random byte flips — decodes to a clean
// DataLoss/InvalidArgument. Never a crash, a hang, or an over-read (the CI
// asan job runs this suite under AddressSanitizer).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "net/wire.h"

namespace gdpr::net {
namespace {

GdprRecord SampleRecord(const std::string& key) {
  GdprRecord rec;
  rec.key = key;
  rec.data = "payload-bytes \x01\x02\xff for " + key;
  rec.metadata.user = "user-000042";
  rec.metadata.purposes = {"ads", "analytics"};
  rec.metadata.objections = {"ads"};
  rec.metadata.origin = "first-party";
  rec.metadata.shared_with = {"partner-a", "partner-b"};
  rec.metadata.expiry_micros = 1723455678901234;
  rec.metadata.created_micros = 1713455678901234;
  return rec;
}

void ExpectSameRecord(const GdprRecord& a, const GdprRecord& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.metadata.user, b.metadata.user);
  EXPECT_EQ(a.metadata.purposes, b.metadata.purposes);
  EXPECT_EQ(a.metadata.objections, b.metadata.objections);
  EXPECT_EQ(a.metadata.origin, b.metadata.origin);
  EXPECT_EQ(a.metadata.shared_with, b.metadata.shared_with);
  EXPECT_EQ(a.metadata.expiry_micros, b.metadata.expiry_micros);
  EXPECT_EQ(a.metadata.created_micros, b.metadata.created_micros);
}

// Every request op with its full argument surface, for reuse by the
// truncation and fuzz tests below.
std::vector<WireRequest> AllRequests() {
  std::vector<WireRequest> reqs;
  const Actor actors[] = {Actor::Controller(), Actor::Customer("user-000001"),
                          Actor::Processor("proc-7", "analytics"),
                          Actor::Regulator()};
  size_t a = 0;
  const auto with = [&](WireOp op) -> WireRequest& {
    WireRequest r;
    r.op = op;
    r.actor = actors[a++ % 4];
    reqs.push_back(std::move(r));
    return reqs.back();
  };
  with(WireOp::kPing);
  with(WireOp::kOpen);
  with(WireOp::kClose);
  with(WireOp::kCreateRecord).record = SampleRecord("key-create");
  with(WireOp::kReadData).key = "key-read";
  with(WireOp::kReadMeta).key = "key-meta";
  with(WireOp::kReadMetaUser).key = "user-000042";
  with(WireOp::kReadMetaPurpose).key = "ads";
  with(WireOp::kReadMetaSharing).key = "partner-a";
  with(WireOp::kReadRecordsUser).key = "user-000042";
  {
    WireRequest& r = with(WireOp::kUpdateMeta);
    r.key = "key-update";
    r.update.user = "user-000099";
    r.update.purposes = std::vector<std::string>{"billing"};
    r.update.objections = std::vector<std::string>{};
    r.update.shared_with = std::vector<std::string>{"partner-c"};
    r.update.origin = "third-party";
    r.update.expiry_micros = 42;
  }
  {
    WireRequest& r = with(WireOp::kUpdateData);
    r.key = "key-data";
    r.data = std::string("new\0data", 8);
  }
  with(WireOp::kDeleteKey).key = "key-del";
  with(WireOp::kDeleteUser).key = "user-000042";
  with(WireOp::kDeleteExpired);
  with(WireOp::kVerifyDeletion).key = "key-verify";
  {
    WireRequest& r = with(WireOp::kGetLogs);
    r.from_micros = -5;
    r.to_micros = 9999999999999;
  }
  with(WireOp::kGetFeatures);
  with(WireOp::kScanRecords);
  with(WireOp::kRecordCount);
  with(WireOp::kTotalBytes);
  with(WireOp::kReset);
  with(WireOp::kHealth);
  with(WireOp::kStatsSnapshot);
  with(WireOp::kCompactNow);
  with(WireOp::kCompactionStats);
  {
    WireRequest& r = with(WireOp::kExportRecords);
    r.slot = 17;
    r.num_slots = 1024;
  }
  {
    WireRequest& r = with(WireOp::kExportTombstones);
    r.slot = 1023;
    r.num_slots = 1024;
  }
  with(WireOp::kImportRecord).record = SampleRecord("key-import");
  with(WireOp::kAdoptTombstone).key = "key-tomb";
  with(WireOp::kEvictRecord).key = "key-evict";
  with(WireOp::kClearTombstone).key = "key-clear";
  with(WireOp::kVerifyAuditChain);
  return reqs;
}

TEST(WireRequests, EveryOpRoundTrips) {
  for (const WireRequest& req : AllRequests()) {
    const std::string payload = EncodeRequest(req);
    WireRequest back;
    ASSERT_TRUE(DecodeRequest(payload, &back).ok())
        << WireOpName(req.op);
    EXPECT_EQ(back.op, req.op) << WireOpName(req.op);
    EXPECT_EQ(back.actor.role, req.actor.role);
    EXPECT_EQ(back.actor.id, req.actor.id);
    EXPECT_EQ(back.actor.purpose, req.actor.purpose);
    EXPECT_EQ(back.key, req.key);
    EXPECT_EQ(back.data, req.data);
    EXPECT_EQ(back.from_micros, req.from_micros);
    EXPECT_EQ(back.to_micros, req.to_micros);
    EXPECT_EQ(back.slot, req.slot);
    EXPECT_EQ(back.num_slots, req.num_slots);
    if (req.op == WireOp::kCreateRecord || req.op == WireOp::kImportRecord) {
      ExpectSameRecord(back.record, req.record);
    }
    if (req.op == WireOp::kUpdateMeta) {
      EXPECT_EQ(back.update.user, req.update.user);
      EXPECT_EQ(back.update.purposes, req.update.purposes);
      EXPECT_EQ(back.update.objections, req.update.objections);
      EXPECT_EQ(back.update.shared_with, req.update.shared_with);
      EXPECT_EQ(back.update.origin, req.update.origin);
      EXPECT_EQ(back.update.expiry_micros, req.update.expiry_micros);
    }
  }
}

TEST(WireRequests, PartialMetadataUpdateKeepsAbsentFieldsAbsent) {
  WireRequest req;
  req.op = WireOp::kUpdateMeta;
  req.actor = Actor::Controller();
  req.key = "k";
  req.update.objections = std::vector<std::string>{"ads"};
  WireRequest back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(req), &back).ok());
  EXPECT_FALSE(back.update.user.has_value());
  EXPECT_FALSE(back.update.purposes.has_value());
  ASSERT_TRUE(back.update.objections.has_value());
  EXPECT_EQ(*back.update.objections, std::vector<std::string>{"ads"});
  EXPECT_FALSE(back.update.shared_with.has_value());
  EXPECT_FALSE(back.update.origin.has_value());
  EXPECT_FALSE(back.update.expiry_micros.has_value());
}

// Every Status code — and its message — survives the seam. The router's
// merge logic branches on Unavailable and DataLoss specifically.
TEST(WireResponses, StatusRoundTripsLosslessly) {
  const Status statuses[] = {
      Status::OK(),
      Status::NotFound("no such key: abc"),
      Status::AlreadyExists("key exists"),
      Status::InvalidArgument("bad request"),
      Status::PermissionDenied("customer may not read another subject"),
      Status::FailedPrecondition("store not open"),
      Status::IOError("fsync failed: EIO"),
      Status::DataLoss("aof frame 17 corrupt"),
      Status::Unimplemented("not here"),
      Status::Internal("bug"),
      Status::Unavailable("degraded read-only: audit log lost"),
  };
  for (const Status& s : statuses) {
    WireResponse resp;
    resp.op = WireOp::kReadData;
    resp.status = s;
    if (s.ok()) resp.record = SampleRecord("k");
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    EXPECT_EQ(back.status.code(), s.code());
    EXPECT_EQ(back.status.message(), s.message());
  }
}

TEST(WireResponses, ResultPayloadsRoundTrip) {
  {  // record vectors (scan / metadata queries / exports)
    WireResponse resp;
    resp.op = WireOp::kScanRecords;
    resp.status = Status::DataLoss("2 records unreadable");  // partial scan
    resp.records = {SampleRecord("a"), SampleRecord("b"), SampleRecord("c")};
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    EXPECT_TRUE(back.status.IsDataLoss());
    ASSERT_EQ(back.records.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      ExpectSameRecord(back.records[i], resp.records[i]);
    }
  }
  {  // metadata
    WireResponse resp;
    resp.op = WireOp::kReadMeta;
    resp.metadata = SampleRecord("x").metadata;
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    EXPECT_EQ(back.metadata.user, resp.metadata.user);
    EXPECT_EQ(back.metadata.purposes, resp.metadata.purposes);
    EXPECT_EQ(back.metadata.shared_with, resp.metadata.shared_with);
    EXPECT_EQ(back.metadata.expiry_micros, resp.metadata.expiry_micros);
  }
  {  // tombstone keys
    WireResponse resp;
    resp.op = WireOp::kExportTombstones;
    resp.keys = {"k1", "k2", std::string("k\x00\x03", 4)};
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    EXPECT_EQ(back.keys, resp.keys);
  }
  {  // audit entries
    WireResponse resp;
    resp.op = WireOp::kGetLogs;
    AuditEntry e;
    e.timestamp_micros = 123456789;
    e.actor_id = "controller";
    e.role = Actor::Role::kRegulator;
    e.op = "READ-DATA";
    e.key = "k";
    e.allowed = true;
    resp.entries = {e, e};
    resp.entries[1].allowed = false;
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    ASSERT_EQ(back.entries.size(), 2u);
    EXPECT_EQ(back.entries[0].timestamp_micros, e.timestamp_micros);
    EXPECT_EQ(back.entries[0].actor_id, e.actor_id);
    EXPECT_EQ(back.entries[0].role, e.role);
    EXPECT_EQ(back.entries[0].op, e.op);
    EXPECT_EQ(back.entries[0].key, e.key);
    EXPECT_TRUE(back.entries[0].allowed);
    EXPECT_FALSE(back.entries[1].allowed);
  }
  {  // counts, flags, health, head hash
    WireResponse resp;
    resp.op = WireOp::kVerifyAuditChain;
    resp.flag = true;
    resp.head_hash = std::string("\x01\x02\x03\xff", 4);
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    EXPECT_TRUE(back.flag);
    EXPECT_EQ(back.head_hash, resp.head_hash);

    WireResponse h;
    h.op = WireOp::kHealth;
    h.health = HealthState::kDegradedReadOnly;
    h.health_cause = Status::IOError("audit fsync failed");
    WireResponse hback;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(h), &hback).ok());
    EXPECT_EQ(hback.health, HealthState::kDegradedReadOnly);
    EXPECT_EQ(hback.health_cause.code(), StatusCode::kIOError);

    WireResponse c;
    c.op = WireOp::kRecordCount;
    c.count = 0xFFFFFFFFFFFFull;
    WireResponse cback;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(c), &cback).ok());
    EXPECT_EQ(cback.count, c.count);
  }
  {  // compaction stats
    WireResponse resp;
    resp.op = WireOp::kCompactNow;
    resp.stats.compactions = 3;
    resp.stats.log_bytes = 4096;
    resp.stats.live_bytes = 2048;
    resp.stats.last_bytes_before = 8192;
    resp.stats.last_bytes_after = 4096;
    resp.stats.last_compaction_micros = 1700000000000000;
    resp.stats.erasure_barrier = 777;
    resp.stats.erasures_pending_compaction = 2;
    resp.stats.audit_segments = 5;
    resp.stats.audit_dropped_entries = 11;
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    EXPECT_EQ(back.stats.compactions, resp.stats.compactions);
    EXPECT_EQ(back.stats.log_bytes, resp.stats.log_bytes);
    EXPECT_EQ(back.stats.live_bytes, resp.stats.live_bytes);
    EXPECT_EQ(back.stats.last_bytes_before, resp.stats.last_bytes_before);
    EXPECT_EQ(back.stats.last_bytes_after, resp.stats.last_bytes_after);
    EXPECT_EQ(back.stats.last_compaction_micros,
              resp.stats.last_compaction_micros);
    EXPECT_EQ(back.stats.erasure_barrier, resp.stats.erasure_barrier);
    EXPECT_EQ(back.stats.erasures_pending_compaction,
              resp.stats.erasures_pending_compaction);
    EXPECT_EQ(back.stats.audit_segments, resp.stats.audit_segments);
    EXPECT_EQ(back.stats.audit_dropped_entries,
              resp.stats.audit_dropped_entries);
  }
  {  // metrics snapshot
    WireResponse resp;
    resp.op = WireOp::kStatsSnapshot;
    obs::MetricsRegistry reg;
    reg.GetCounter("ops_total")->Add(7);
    reg.GetGauge("health")->Set(-2);
    obs::Histogram* h = reg.GetHistogram("lat_us");
    h->Record(3);
    h->Record(70000);
    resp.snapshot = reg.Snapshot();
    WireResponse back;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back).ok());
    ASSERT_EQ(back.snapshot.counters.size(), 1u);
    EXPECT_EQ(back.snapshot.counters[0].first, "ops_total");
    EXPECT_EQ(back.snapshot.counters[0].second, 7u);
    ASSERT_EQ(back.snapshot.gauges.size(), 1u);
    EXPECT_EQ(back.snapshot.gauges[0].second, -2);
    ASSERT_EQ(back.snapshot.histograms.size(), 1u);
    EXPECT_EQ(back.snapshot.histograms[0].count, 2u);
    EXPECT_EQ(back.snapshot.histograms[0].sum, 70003u);
    EXPECT_EQ(back.snapshot.histograms[0].counts,
              resp.snapshot.histograms[0].counts);
  }
}

// ---- framing --------------------------------------------------------------

TEST(FrameBufferTest, ReassemblesFramesFedByteByByte) {
  const std::string p1 = EncodeRequest(AllRequests()[3]);  // kCreateRecord
  const std::string p2 = "x";
  const std::string stream = Frame(p1) + Frame(p2) + Frame("");
  FrameBuffer buf;
  std::vector<std::string> out;
  for (size_t i = 0; i < stream.size(); ++i) {
    buf.Feed(stream.data() + i, 1);
    bool have = true;
    while (have) {
      std::string payload;
      ASSERT_TRUE(buf.Next(&payload, &have).ok());
      if (have) out.push_back(std::move(payload));
    }
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], p1);
  EXPECT_EQ(out[1], p2);
  EXPECT_EQ(out[2], "");
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(FrameBufferTest, OversizedLengthPrefixPoisonsTheStream) {
  // 0xFFFFFFFF little-endian: far over kMaxFrameBytes. The buffer must
  // refuse — allocating it would be a bomb — and stay refused: there is no
  // way to resynchronize a length-framed stream after a bad length.
  FrameBuffer buf;
  const char evil[4] = {'\xff', '\xff', '\xff', '\xff'};
  buf.Feed(evil, 4);
  std::string payload;
  bool have = false;
  EXPECT_TRUE(buf.Next(&payload, &have).IsDataLoss());
  EXPECT_FALSE(have);
  // Still poisoned after more (valid-looking) bytes arrive.
  const std::string good = Frame("hello");
  buf.Feed(good.data(), good.size());
  EXPECT_TRUE(buf.Next(&payload, &have).IsDataLoss());
  EXPECT_FALSE(have);
}

TEST(FrameBufferTest, TruncatedFrameJustWaits) {
  const std::string framed = Frame(EncodeRequest(AllRequests()[0]));
  FrameBuffer buf;
  buf.Feed(framed.data(), framed.size() - 1);  // all but the last byte
  std::string payload;
  bool have = true;
  ASSERT_TRUE(buf.Next(&payload, &have).ok());
  EXPECT_FALSE(have);  // incomplete ≠ corrupt: more bytes may arrive
  buf.Feed(framed.data() + framed.size() - 1, 1);
  ASSERT_TRUE(buf.Next(&payload, &have).ok());
  EXPECT_TRUE(have);
}

// ---- malformed payloads ---------------------------------------------------

TEST(WireMalformed, UnknownOpTagIsInvalidArgument) {
  std::string payload;
  payload.push_back(char(kWireVersion));
  payload.push_back(char(200));  // no such op
  WireRequest req;
  EXPECT_TRUE(DecodeRequest(payload, &req).code() == StatusCode::kInvalidArgument);
  WireResponse resp;
  EXPECT_TRUE(DecodeResponse(payload, &resp).code() == StatusCode::kInvalidArgument);
}

TEST(WireMalformed, UnsupportedVersionIsRefusedNotMisparsed) {
  std::string payload = EncodeRequest(AllRequests()[3]);
  payload[0] = char(kWireVersion + 1);
  WireRequest req;
  EXPECT_TRUE(DecodeRequest(payload, &req).code() == StatusCode::kInvalidArgument);
}

TEST(WireMalformed, EveryTruncationDecodesCleanly) {
  // Chop every valid payload at every length. Within its own schema a
  // strict prefix must decode to a clean error — a request missing its
  // last byte is never a shorter valid request. The opposite-schema
  // decoder just has to return without crashing or over-reading: requests
  // and responses share no discriminator, so response bytes occasionally
  // parse as a (different) valid request, and that is fine.
  std::vector<std::string> request_payloads;
  for (const WireRequest& req : AllRequests()) {
    request_payloads.push_back(EncodeRequest(req));
  }
  std::vector<std::string> response_payloads;
  {
    WireResponse resp;
    resp.op = WireOp::kScanRecords;
    resp.records = {SampleRecord("a"), SampleRecord("b")};
    response_payloads.push_back(EncodeResponse(resp));
    WireResponse logs;
    logs.op = WireOp::kGetLogs;
    AuditEntry e;
    e.actor_id = "x";
    e.op = "OP";
    logs.entries = {e};
    response_payloads.push_back(EncodeResponse(logs));
  }
  for (const std::string& payload : request_payloads) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix(payload.data(), cut);
      WireRequest req;
      EXPECT_FALSE(DecodeRequest(prefix, &req).ok())
          << "request prefix of length " << cut << "/" << payload.size()
          << " decoded as op " << static_cast<int>(req.op);
      WireResponse resp;
      (void)DecodeResponse(prefix, &resp);  // must return, any verdict
    }
  }
  for (const std::string& payload : response_payloads) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix(payload.data(), cut);
      WireResponse resp;
      EXPECT_FALSE(DecodeResponse(prefix, &resp).ok())
          << "response prefix of length " << cut << "/" << payload.size()
          << " decoded OK";
      WireRequest req;
      (void)DecodeRequest(prefix, &req);  // must return, any verdict
    }
  }
}

TEST(WireMalformed, TrailingBytesAreRejected) {
  for (const WireRequest& req : AllRequests()) {
    std::string payload = EncodeRequest(req);
    payload.push_back('\0');
    WireRequest back;
    EXPECT_FALSE(DecodeRequest(payload, &back).ok()) << WireOpName(req.op);
  }
}

TEST(WireMalformed, ByteFlipFuzzNeverCrashes) {
  // Seeded, deterministic: flip 1-3 bytes of a valid payload and decode.
  // The decoder may accept (the flip hit a don't-care byte) or reject, but
  // must always return — no crash, no hang, no over-read under asan.
  Random rng(20260808);
  const std::vector<WireRequest> reqs = AllRequests();
  std::vector<std::string> payloads;
  for (const WireRequest& req : reqs) payloads.push_back(EncodeRequest(req));
  {
    WireResponse resp;
    resp.op = WireOp::kScanRecords;
    resp.status = Status::Unavailable("degraded");
    resp.records = {SampleRecord("fuzz-a"), SampleRecord("fuzz-b")};
    payloads.push_back(EncodeResponse(resp));
  }
  for (int iter = 0; iter < 4000; ++iter) {
    std::string p = payloads[rng.Uniform(payloads.size())];
    const size_t flips = 1 + rng.Uniform(3);
    for (size_t f = 0; f < flips && !p.empty(); ++f) {
      p[rng.Uniform(p.size())] ^= char(1 + rng.Uniform(255));
    }
    WireRequest req;
    (void)DecodeRequest(p, &req);
    WireResponse resp;
    (void)DecodeResponse(p, &resp);
  }
  // Pure garbage too.
  for (int iter = 0; iter < 2000; ++iter) {
    std::string p;
    const size_t n = rng.Uniform(64);
    for (size_t i = 0; i < n; ++i) p.push_back(char(rng.Uniform(256)));
    WireRequest req;
    (void)DecodeRequest(p, &req);
    WireResponse resp;
    (void)DecodeResponse(p, &resp);
  }
}

// ---- slot hash ------------------------------------------------------------

TEST(SlotHash, DeterministicBoundedAndSpread) {
  EXPECT_EQ(SlotForKey("some-key", 1024), SlotForKey("some-key", 1024));
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 4096; ++i) {
    const uint32_t s = SlotForKey("key-" + std::to_string(i), 16);
    ASSERT_LT(s, 16u);
    ++hits[s];
  }
  for (const int h : hits) EXPECT_GT(h, 0);  // no empty slot at 256x load
}

}  // namespace
}  // namespace gdpr::net
