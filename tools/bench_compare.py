#!/usr/bin/env python3
"""Diff two BENCH_RESULT_JSON trajectories and flag regressions.

CI uploads each run's scraped ``bench_results.jsonl`` as an artifact; this
tool diffs the current run against the previous one and emits GitHub
Actions ``::warning::`` annotations for metrics that regressed by more than
the threshold (default 15%). It never fails the build by default — perf on
shared runners is noisy, so regressions warn and humans decide (pass
``--strict`` to turn warnings into a nonzero exit).

Usage:
    tools/bench_compare.py BASELINE.jsonl CURRENT.jsonl [--threshold 0.15]
                           [--strict]

Input lines look like either of:
    BENCH_RESULT_JSON {"bench":"fig5-memkv","ops_per_sec":412.0,"p99_us":2150.0}
    BENCH_JSON {"bench":"fig3a-lazy-minutes","x":1000,"y":2.5}

Metrics are matched by (bench name [, x]) and field name. Direction is
inferred from the field name: throughput-like fields regress when they
drop, latency/size-like fields regress when they grow; unknown fields are
compared in both directions and flagged on growth (conservative).
"""

import argparse
import json
import sys

MARKERS = ("BENCH_RESULT_JSON", "BENCH_JSON")

# Field-name suffix/substring -> True when higher is better.
HIGHER_IS_BETTER = ("ops_per_sec", "speedup", "throughput", "ops",
                    "injection_points", "invariant_checks")
LOWER_IS_BETTER = ("_us", "_ms", "latency", "bytes", "amplification",
                   "delay", "p50", "p99", "y", "overhead", "ratio")
# Series points carry their metric in a generic "y" field, so direction
# must come from the bench *name* (e.g. get-scale-writer-retention and
# get-scale-meta-speedup regress when they DROP, unlike latency series).
# "-ops" covers the cluster throughput series (cluster-scan-metaq-ops,
# cluster-idx-metaq-ops); the cluster-rpc-* point-read rows carry explicit
# ops_per_sec/p50_us/p99_us fields, which the field-name rules handle.
SERIES_HIGHER_IS_BETTER = ("retention", "speedup", "scale-up", "throughput",
                           "-ops")


def parse_jsonl(path):
    """Returns {(bench_key): {field: value}} for every marker line."""
    out = {}
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        return out
    for line in lines:
        for marker in MARKERS:
            idx = line.find(marker)
            if idx < 0:
                continue
            payload = line[idx + len(marker):].strip()
            try:
                obj = json.loads(payload)
            except json.JSONDecodeError:
                continue
            name = obj.get("bench")
            if not name:
                continue
            key = (name, obj.get("x"))
            metrics = {k: v for k, v in obj.items()
                       if k not in ("bench", "x") and
                       isinstance(v, (int, float))}
            # Last write wins if a bench repeats (e.g. warm-up emits twice).
            out.setdefault(key, {}).update(metrics)
            break
    return out


def direction(field, bench=""):
    """1 = higher is better, -1 = lower is better, 0 = unknown."""
    f = field.lower()
    if f == "y":
        b = bench.lower()
        for tag in SERIES_HIGHER_IS_BETTER:
            if tag in b:
                return 1
    for tag in HIGHER_IS_BETTER:
        if f == tag or f.endswith(tag):
            return 1
    for tag in LOWER_IS_BETTER:
        if tag in f:
            return -1
    return 0


def bench_label(key):
    name, x = key
    return f"{name}@x={x:g}" if x is not None else name


def compare(baseline, current, threshold):
    """Yields (key, field, old, new, pct_change) for each regression."""
    for key, cur_metrics in sorted(current.items()):
        base_metrics = baseline.get(key)
        if not base_metrics:
            continue
        for field, new in sorted(cur_metrics.items()):
            old = base_metrics.get(field)
            if old is None or old == 0:
                continue
            d = direction(field, key[0])
            if d == 0:
                d = -1  # unknown fields: growth is suspicious
            # Relative change in the "good" direction; negative = worse.
            delta = (new - old) / abs(old) * d
            if delta < -threshold:
                yield key, field, old, new, delta


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="previous run's jsonl")
    ap.add_argument("current", help="this run's jsonl")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression that triggers a warning "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any regression is found")
    args = ap.parse_args()

    baseline = parse_jsonl(args.baseline)
    current = parse_jsonl(args.current)
    if not baseline:
        print(f"bench_compare: no baseline metrics in {args.baseline}; "
              "nothing to compare (first run?)")
        return 0
    if not current:
        print(f"bench_compare: no metrics in {args.current}", file=sys.stderr)
        return 0

    matched = sum(1 for k in current if k in baseline)
    regressions = list(compare(baseline, current, args.threshold))
    for key, field, old, new, delta in regressions:
        label = bench_label(key)
        # GitHub Actions annotation: shows up on the run summary page.
        print(f"::warning title=bench regression::{label} {field}: "
              f"{old:g} -> {new:g} ({delta * 100:+.1f}% vs baseline, "
              f"threshold {args.threshold * 100:.0f}%)")
    print(f"bench_compare: {matched}/{len(current)} benches matched a "
          f"baseline, {len(regressions)} regression(s) over "
          f"{args.threshold * 100:.0f}%")
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
