// statsdump: run a small mixed GDPR workload against a chosen backend and
// print its StatsSnapshot — the quickest way to see what the metrics layer
// exposes, and a smoke test that every layer actually records.
//
//   build/tools/statsdump [--backend=kv|rel|cluster] [--nodes=N]
//                         [--records=N] [--ops=N]
//                         [--format=table|prom|json]
//
//   table  per-metric values plus histogram count/mean/p50/p99 (default)
//   prom   Prometheus exposition text (what a /metrics endpoint would serve)
//   json   one JSON object

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "cluster/cluster_store.h"
#include "common/string_util.h"
#include "gdpr/kv_backend.h"
#include "gdpr/rel_backend.h"

namespace gdpr {
namespace {

struct Args {
  std::string backend = "kv";
  std::string format = "table";
  size_t nodes = 4;
  size_t records = 500;
  size_t ops = 2000;
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (strncmp(s, "--backend=", 10) == 0) a.backend = s + 10;
    else if (strncmp(s, "--format=", 9) == 0) a.format = s + 9;
    else if (strncmp(s, "--nodes=", 8) == 0) a.nodes = size_t(atoll(s + 8));
    else if (strncmp(s, "--records=", 10) == 0)
      a.records = size_t(atoll(s + 10));
    else if (strncmp(s, "--ops=", 6) == 0) a.ops = size_t(atoll(s + 6));
    else {
      printf(
          "usage: statsdump [--backend=kv|rel|cluster] [--nodes=N]\n"
          "                 [--records=N] [--ops=N] [--format=table|prom|"
          "json]\n");
      exit(s == std::string("--help") ? 0 : 2);
    }
  }
  return a;
}

std::unique_ptr<GdprStore> MakeStore(const Args& a) {
  ComplianceFlags flags;
  flags.audit_enabled = true;
  flags.metadata_indexing = true;
  if (a.backend == "kv") {
    KvGdprOptions o;
    o.compliance = flags;
    return std::make_unique<KvGdprStore>(o);
  }
  if (a.backend == "rel") {
    RelGdprOptions o;
    o.compliance = flags;
    return std::make_unique<RelGdprStore>(o);
  }
  if (a.backend == "cluster") {
    cluster::ClusterOptions o;
    o.nodes = a.nodes ? a.nodes : 1;
    o.compliance = flags;
    return std::make_unique<cluster::ClusterGdprStore>(o);
  }
  fprintf(stderr, "unknown backend '%s'\n", a.backend.c_str());
  exit(2);
}

GdprRecord MakeRecord(size_t i) {
  GdprRecord rec;
  rec.key = "user" + std::to_string(i);
  rec.data = "payload-" + std::to_string(i);
  rec.metadata.user = "owner" + std::to_string(i % 23);
  rec.metadata.purposes = {i % 2 ? "analytics" : "billing"};
  rec.metadata.shared_with = {"partner" + std::to_string(i % 5)};
  rec.metadata.origin = "statsdump";
  return rec;
}

// Exercise every op class once plus a point-op mix, so the dump shows a
// populated histogram per row of the Table 2 vocabulary.
void RunWorkload(GdprStore* store, const Args& a) {
  const Actor controller = Actor::Controller();
  const Actor regulator = Actor::Regulator();
  for (size_t i = 0; i < a.records; ++i) {
    store->CreateRecord(controller, MakeRecord(i)).ok();
  }
  for (size_t i = 0; i < a.ops; ++i) {
    const size_t k = (i * 40503u) % (a.records ? a.records : 1);
    const std::string key = "user" + std::to_string(k);
    switch (i % 7) {
      case 0: store->ReadDataByKey(controller, key).ok(); break;
      case 1: store->ReadMetadataByKey(controller, key).ok(); break;
      case 2:
        store->ReadMetadataByUser(controller,
                                  "owner" + std::to_string(k % 23)).ok();
        break;
      case 3: {
        MetadataUpdate u;
        u.origin = "statsdump-updated";
        store->UpdateMetadataByKey(controller, key, u).ok();
        break;
      }
      case 4: store->UpdateDataByKey(controller, key, "rewritten").ok(); break;
      case 5: store->VerifyDeletion(regulator, key).ok(); break;
      default: store->ReadMetadataByPurpose(controller, "billing").ok(); break;
    }
  }
  store->DeleteRecordByKey(controller, "user0").ok();
  store->DeleteRecordsByUser(controller, "owner1").ok();
  store->DeleteExpiredRecords(controller).ok();
  store->GetSystemLogs(regulator, 0, INT64_MAX).ok();
  store->GetFeatures(regulator).ok();
  // A denied op so gdpr_denied_total is nonzero in the dump.
  store->ReadDataByKey(Actor::Customer("owner2"), "user1").ok();
}

void PrintTable(const obs::RegistrySnapshot& snap) {
  printf("== counters ==\n");
  for (const auto& [name, v] : snap.counters) {
    printf("  %-56s %llu\n", name.c_str(), (unsigned long long)v);
  }
  printf("== gauges ==\n");
  for (const auto& [name, v] : snap.gauges) {
    printf("  %-56s %lld\n", name.c_str(), (long long)v);
  }
  printf("== histograms ==\n");
  printf("  %-52s %10s %10s %10s %10s\n", "name", "count", "mean_us",
         "p50_us", "p99_us");
  for (const auto& h : snap.histograms) {
    printf("  %-52s %10llu %10.1f %10.1f %10.1f\n", h.name.c_str(),
           (unsigned long long)h.count, h.Mean(), h.Percentile(50),
           h.Percentile(99));
  }
}

int Main(int argc, char** argv) {
  const Args a = Parse(argc, argv);
  auto store = MakeStore(a);
  Status s = store->Open();
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  RunWorkload(store.get(), a);
  const obs::RegistrySnapshot snap = store->StatsSnapshot();
  if (a.format == "prom") {
    fputs(snap.ToPrometheus().c_str(), stdout);
  } else if (a.format == "json") {
    printf("%s\n", snap.ToJson().c_str());
  } else {
    PrintTable(snap);
  }
  store->Close().ok();
  return 0;
}

}  // namespace
}  // namespace gdpr

int main(int argc, char** argv) { return gdpr::Main(argc, argv); }
