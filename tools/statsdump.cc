// statsdump: run a small mixed GDPR workload against a chosen backend and
// print its StatsSnapshot — the quickest way to see what the metrics layer
// exposes, and a smoke test that every layer actually records.
//
//   build/tools/statsdump [--backend=kv|rel|cluster] [--nodes=N]
//                         [--records=N] [--ops=N]
//                         [--format=table|prom|json]
//                         [--serve=ADDR | --connect=ADDR]
//
//   table  per-metric values plus histogram count/mean/p50/p99 (default)
//   prom   Prometheus exposition text (what a /metrics endpoint would serve)
//   json   one JSON object
//
// Cross-process mode (ADDR is "unix:/path.sock" or "tcp:host:port"):
//   --serve    run the workload, then keep an RpcServer on ADDR until
//              SIGINT/SIGTERM — any wire-protocol client can interrogate it
//   --connect  fetch a live process's RegistrySnapshot over the wire and
//              print it; no local store or workload at all

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "cluster/cluster_store.h"
#include "common/string_util.h"
#include "gdpr/kv_backend.h"
#include "gdpr/rel_backend.h"
#include "net/rpc_server.h"
#include "net/socket_io.h"
#include "net/wire.h"

namespace gdpr {
namespace {

struct Args {
  std::string backend = "kv";
  std::string format = "table";
  std::string serve;
  std::string connect;
  size_t nodes = 4;
  size_t records = 500;
  size_t ops = 2000;
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (strncmp(s, "--backend=", 10) == 0) a.backend = s + 10;
    else if (strncmp(s, "--format=", 9) == 0) a.format = s + 9;
    else if (strncmp(s, "--serve=", 8) == 0) a.serve = s + 8;
    else if (strncmp(s, "--connect=", 10) == 0) a.connect = s + 10;
    else if (strncmp(s, "--nodes=", 8) == 0) a.nodes = size_t(atoll(s + 8));
    else if (strncmp(s, "--records=", 10) == 0)
      a.records = size_t(atoll(s + 10));
    else if (strncmp(s, "--ops=", 6) == 0) a.ops = size_t(atoll(s + 6));
    else {
      printf(
          "usage: statsdump [--backend=kv|rel|cluster] [--nodes=N]\n"
          "                 [--records=N] [--ops=N] [--format=table|prom|"
          "json]\n"
          "                 [--serve=ADDR | --connect=ADDR]\n"
          "ADDR: unix:/path.sock or tcp:host:port\n");
      exit(s == std::string("--help") ? 0 : 2);
    }
  }
  return a;
}

std::unique_ptr<GdprStore> MakeStore(const Args& a) {
  ComplianceFlags flags;
  flags.audit_enabled = true;
  flags.metadata_indexing = true;
  if (a.backend == "kv") {
    KvGdprOptions o;
    o.compliance = flags;
    return std::make_unique<KvGdprStore>(o);
  }
  if (a.backend == "rel") {
    RelGdprOptions o;
    o.compliance = flags;
    return std::make_unique<RelGdprStore>(o);
  }
  if (a.backend == "cluster") {
    cluster::ClusterOptions o;
    o.nodes = a.nodes ? a.nodes : 1;
    o.compliance = flags;
    return std::make_unique<cluster::ClusterGdprStore>(o);
  }
  fprintf(stderr, "unknown backend '%s'\n", a.backend.c_str());
  exit(2);
}

GdprRecord MakeRecord(size_t i) {
  GdprRecord rec;
  rec.key = "user" + std::to_string(i);
  rec.data = "payload-" + std::to_string(i);
  rec.metadata.user = "owner" + std::to_string(i % 23);
  rec.metadata.purposes = {i % 2 ? "analytics" : "billing"};
  rec.metadata.shared_with = {"partner" + std::to_string(i % 5)};
  rec.metadata.origin = "statsdump";
  return rec;
}

// Exercise every op class once plus a point-op mix, so the dump shows a
// populated histogram per row of the Table 2 vocabulary.
void RunWorkload(GdprStore* store, const Args& a) {
  const Actor controller = Actor::Controller();
  const Actor regulator = Actor::Regulator();
  for (size_t i = 0; i < a.records; ++i) {
    store->CreateRecord(controller, MakeRecord(i)).ok();
  }
  for (size_t i = 0; i < a.ops; ++i) {
    const size_t k = (i * 40503u) % (a.records ? a.records : 1);
    const std::string key = "user" + std::to_string(k);
    switch (i % 7) {
      case 0: store->ReadDataByKey(controller, key).ok(); break;
      case 1: store->ReadMetadataByKey(controller, key).ok(); break;
      case 2:
        store->ReadMetadataByUser(controller,
                                  "owner" + std::to_string(k % 23)).ok();
        break;
      case 3: {
        MetadataUpdate u;
        u.origin = "statsdump-updated";
        store->UpdateMetadataByKey(controller, key, u).ok();
        break;
      }
      case 4: store->UpdateDataByKey(controller, key, "rewritten").ok(); break;
      case 5: store->VerifyDeletion(regulator, key).ok(); break;
      default: store->ReadMetadataByPurpose(controller, "billing").ok(); break;
    }
  }
  store->DeleteRecordByKey(controller, "user0").ok();
  store->DeleteRecordsByUser(controller, "owner1").ok();
  store->DeleteExpiredRecords(controller).ok();
  store->GetSystemLogs(regulator, 0, INT64_MAX).ok();
  store->GetFeatures(regulator).ok();
  // A denied op so gdpr_denied_total is nonzero in the dump.
  store->ReadDataByKey(Actor::Customer("owner2"), "user1").ok();
}

void PrintTable(const obs::RegistrySnapshot& snap) {
  printf("== counters ==\n");
  for (const auto& [name, v] : snap.counters) {
    printf("  %-56s %llu\n", name.c_str(), (unsigned long long)v);
  }
  printf("== gauges ==\n");
  for (const auto& [name, v] : snap.gauges) {
    printf("  %-56s %lld\n", name.c_str(), (long long)v);
  }
  printf("== histograms ==\n");
  printf("  %-52s %10s %10s %10s %10s\n", "name", "count", "mean_us",
         "p50_us", "p99_us");
  for (const auto& h : snap.histograms) {
    printf("  %-52s %10llu %10.1f %10.1f %10.1f\n", h.name.c_str(),
           (unsigned long long)h.count, h.Mean(), h.Percentile(50),
           h.Percentile(99));
  }
}

void PrintSnapshot(const obs::RegistrySnapshot& snap,
                   const std::string& format) {
  if (format == "prom") {
    fputs(snap.ToPrometheus().c_str(), stdout);
  } else if (format == "json") {
    printf("%s\n", snap.ToJson().c_str());
  } else {
    PrintTable(snap);
  }
}

std::atomic<bool> g_stop{false};
void OnSignal(int) { g_stop.store(true); }

// Keep a live RpcServer on the given address until signalled, so other
// processes can interrogate this one over the wire protocol.
int RunServe(const Args& a) {
  if (a.backend != "kv") {
    fprintf(stderr, "--serve wraps one node; it requires --backend=kv\n");
    return 2;
  }
  ComplianceFlags flags;
  flags.audit_enabled = true;
  flags.metadata_indexing = true;
  KvGdprOptions o;
  o.compliance = flags;
  KvGdprStore store(o);
  Status s = store.Open();
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  RunWorkload(&store, a);
  net::RpcServer server(&store);
  s = server.Start(a.serve);
  if (!s.ok()) {
    fprintf(stderr, "serve failed: %s\n", s.ToString().c_str());
    return 1;
  }
  signal(SIGINT, OnSignal);
  signal(SIGTERM, OnSignal);
  printf("serving on %s (SIGINT/SIGTERM to stop)\n", a.serve.c_str());
  fflush(stdout);
  while (!g_stop.load()) usleep(50 * 1000);
  server.Stop();
  store.Close().ok();
  return 0;
}

// One kStatsSnapshot round trip against a foreign process, straight over
// the wire — deliberately not via RemoteHandle, whose statsless degrade
// masks connection errors a human running a CLI wants to see.
int RunConnect(const Args& a) {
  std::string err;
  const int fd = net::Dial(a.connect, /*timeout_ms=*/5000, &err);
  if (fd < 0) {
    fprintf(stderr, "dial %s failed: %s\n", a.connect.c_str(), err.c_str());
    return 1;
  }
  net::WireRequest req;
  req.op = net::WireOp::kStatsSnapshot;
  req.actor = Actor::Regulator();
  Status s = net::WriteAll(fd, net::Frame(net::EncodeRequest(req)), 5000);
  std::string payload;
  net::FrameBuffer buf;
  if (s.ok()) s = net::ReadFrame(fd, &buf, &payload, 5000);
  net::CloseFd(fd);
  if (!s.ok()) {
    fprintf(stderr, "rpc to %s failed: %s\n", a.connect.c_str(),
            s.ToString().c_str());
    return 1;
  }
  net::WireResponse resp;
  s = net::DecodeResponse(payload, &resp);
  if (s.ok() && !resp.status.ok()) s = resp.status;
  if (!s.ok()) {
    fprintf(stderr, "snapshot from %s failed: %s\n", a.connect.c_str(),
            s.ToString().c_str());
    return 1;
  }
  PrintSnapshot(resp.snapshot, a.format);
  return 0;
}

int Main(int argc, char** argv) {
  const Args a = Parse(argc, argv);
  if (!a.serve.empty() && !a.connect.empty()) {
    fprintf(stderr, "--serve and --connect are mutually exclusive\n");
    return 2;
  }
  if (!a.serve.empty()) return RunServe(a);
  if (!a.connect.empty()) return RunConnect(a);
  auto store = MakeStore(a);
  Status s = store->Open();
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  RunWorkload(store.get(), a);
  PrintSnapshot(store->StatsSnapshot(), a.format);
  store->Close().ok();
  return 0;
}

}  // namespace
}  // namespace gdpr

int main(int argc, char** argv) { return gdpr::Main(argc, argv); }
